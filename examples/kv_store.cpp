// A miniature fault-tolerant key-value store built on the public register
// API: one emulated register per key, all sharing a pool of simulated base
// objects (one simulator per key keeps the example simple — real
// deployments multiplex, which changes nothing about the per-register
// guarantees).
//
// Demonstrates the intended downstream use of the library: pick f and k,
// mount registers, and get regular read/write semantics over crash-prone
// storage with O(min(f, c) D) space per key.
//
//   $ ./examples/kv_store
#include <iostream>
#include <map>
#include <string>

#include "harness/runner.h"
#include "harness/table.h"

namespace {

using namespace sbrs;

/// One key = one emulated register run. Values are fixed-width records.
struct KvShard {
  std::string key;
  harness::RunOutcome outcome;
};

KvShard run_shard(const std::string& key, uint64_t seed) {
  registers::RegisterConfig cfg;
  cfg.f = 2;
  cfg.k = 4;
  cfg.n = 2 * cfg.f + cfg.k;
  cfg.data_bits = 1024;  // 128-byte records

  auto algorithm = registers::make_adaptive(cfg);

  harness::RunOptions opts;
  opts.writers = 2;   // two app servers updating this key
  opts.writes_per_client = 3;
  opts.readers = 2;   // two app servers reading it
  opts.reads_per_client = 3;
  opts.object_crashes = 1;  // a disk dies mid-run
  opts.seed = seed;
  return KvShard{key, harness::run_register_experiment(*algorithm, opts)};
}

}  // namespace

int main() {
  std::cout << "kv-store demo: 4 keys, each an adaptive register over "
               "n=8 crash-prone objects (f=2, k=4), 128-byte records, one "
               "object crash injected per key\n\n";

  harness::Table table({"key", "ops", "peak bits", "final bits",
                        "regular", "live"});
  bool all_ok = true;
  uint64_t seed = 1;
  for (const std::string key :
       {"user:42", "order:9000", "cart:7", "session:abc"}) {
    KvShard shard = run_shard(key, seed++);
    const auto& out = shard.outcome;
    table.add_row(shard.key, out.report.completed_ops, out.max_object_bits,
                  out.final_object_bits,
                  out.strong_regular.ok ? "strong" : "VIOLATED",
                  out.live ? "yes" : "NO");
    all_ok = all_ok && out.strong_regular.ok && out.live;
  }
  table.print();

  if (!all_ok) {
    std::cerr << "\nconsistency violation — see above\n";
    return 1;
  }
  std::cout << "\nEach key's storage peaked near (c+1) n D / k and was "
               "garbage-collected back toward n D / k after the writes "
               "quiesced — the Theorem 2 envelope, per key.\n";
  return 0;
}
