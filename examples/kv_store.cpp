// A miniature fault-tolerant key-value store on the store engine: many keys
// multiplexed over a few shards, each shard a SINGLE pool of crash-prone
// simulated base objects shared by all of its keys (src/store/). This is
// the real deployment shape — the per-key register guarantees compose
// because per-key protocol state never interacts across keys, while the
// keys share the crash domain and the storage pool.
//
// Demonstrates both driving modes of the Store API:
//   1. interactive put/get — write and read back individual records;
//   2. a batch YCSB-B run (zipfian, read-heavy) with per-key consistency
//      checking, merged tail latency, and Definition 2 storage maxima.
//
//   $ ./examples/kv_store
#include <iostream>
#include <string>

#include "harness/table.h"
#include "store/store.h"

namespace {

using namespace sbrs;

store::StoreOptions make_options() {
  store::StoreOptions opts;
  opts.algorithm = "adaptive";
  opts.register_config.f = 2;
  opts.register_config.k = 4;
  opts.register_config.n = 2 * 2 + 4;  // n = 2f + k
  opts.register_config.data_bits = 1024;  // 128-byte records
  opts.num_shards = 4;
  opts.workload.num_keys = 64;
  opts.workload.clients = 4;       // four app servers
  opts.workload.ops_per_client = 48;
  opts.workload.mix = store::ycsb::Mix::kB;  // 95% reads
  opts.workload.distribution = store::ycsb::Distribution::kZipfian;
  opts.object_crashes_per_shard = 1;  // a disk dies in every shard
  opts.seed = 7;
  return opts;
}

}  // namespace

int main() {
  const store::StoreOptions opts = make_options();
  std::cout << "kv-store demo: " << opts.workload.num_keys
            << " keys hashed onto " << opts.num_shards
            << " shards, each shard one adaptive-register pool over n=8 "
               "crash-prone objects (f=2, k=4), 128-byte records, one "
               "object crash injected per shard\n\n";

  // --- Interactive traffic: a few named records ---
  store::Store interactive(make_options());
  for (const std::string key :
       {"user:42", "order:9000", "cart:7", "session:abc"}) {
    // Distinct tags per write keep the consistency checkers meaningful.
    interactive.put(key, Value::from_tag(store::ShardMap::key_hash(key),
                                         opts.register_config.data_bits));
  }
  const Value cart = interactive.get("cart:7");
  std::cout << "put 4 records, get(\"cart:7\") returned the value with tag "
            << cart.tag() << " (shard "
            << interactive.shard_map().shard_of("cart:7") << ")\n\n";

  // --- Batch YCSB-B: skewed read-heavy traffic over the whole keyspace ---
  store::Store batch(make_options());
  store::StoreResult result = batch.run();

  harness::Table table({"shard", "keys", "ops", "peak bits", "final bits",
                        "read p50/p99", "checks", "live"});
  for (const auto& s : result.shards) {
    table.add_row(s.shard, s.keys_mounted, s.report.completed_ops,
                  s.max_object_bits, s.final_object_bits,
                  std::to_string(s.read_latency.p50()) + " / " +
                      std::to_string(s.read_latency.p99()),
                  s.consistency_failures == 0 ? "ok" : "VIOLATED",
                  s.live ? "yes" : "NO");
  }
  table.print();

  std::cout << "\nmerged: " << result.completed_reads << " reads / "
            << result.completed_writes << " writes, read latency p50 "
            << result.read_latency.p50() << " / p99 "
            << result.read_latency.p99() << " steps, "
            << result.keys_checked << " keys checked per their guarantee\n";

  if (result.consistency_failures != 0 || !result.all_live ||
      !result.all_quiesced) {
    for (const auto& s : result.shards) {
      for (const auto& v : s.violations) std::cerr << v << "\n";
    }
    std::cerr << "\nconsistency/liveness violation or truncated run — "
                 "see above\n";
    return 1;
  }
  std::cout << "\nEach shard's storage peaked near keys x (c+1) n D / k and "
               "was garbage-collected back toward keys x n D / k once "
               "writes quiesced — the Theorem 2 envelope, per key, "
               "surviving one object crash per shard.\n";
  return 0;
}
