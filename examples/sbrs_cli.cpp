// sbrs_cli — command-line experiment runner.
//
// Run any of the register algorithms under a configurable workload and
// scheduler and print the storage/consistency outcome — or run a whole
// storage-vs-concurrency sweep grid on a thread pool and export it as JSON
// (the Figure-style curves in one command).
//
//   $ ./examples/sbrs_cli --alg=adaptive --f=2 --k=4 --writers=6
//         (--writes=2 --readers=2 --reads=2 --seed=7 --crashes=2 ...)
//   $ ./examples/sbrs_cli --alg=coded --writers=16 --sched=burst
//   $ ./examples/sbrs_cli --sweep --algs=abd,coded,adaptive --sched=burst \
//         --cs=1,2,4,8,16,32 --seeds=5 --threads=8 --json=sweep.json
//   $ ./examples/sbrs_cli --store --keys=512 --shards=32 --dist=zipfian \
//         --mix=B --clients=8 --ops=64 --threads=8 --json=store.json
//   $ ./examples/sbrs_cli --help
#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bounds/formulas.h"
#include "common/check.h"
#include "harness/algorithms.h"
#include "harness/campaign.h"
#include "harness/export.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/sweep.h"
#include "harness/table.h"
#include "metrics/latency_histogram.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "store/store.h"

namespace {

struct CliOptions {
  std::string alg = "adaptive";
  std::string backend = "sim";  // sim|threads (single and store modes)
  uint32_t f = 2;
  uint32_t k = 4;
  uint64_t data_bits = 4096;
  uint32_t writers = 2;
  uint32_t writes = 2;
  uint32_t readers = 2;
  uint32_t reads = 2;
  uint64_t seed = 1;
  std::string sched = "random";
  uint32_t crashes = 0;
  // Crash recovery (with --crashes and the random scheduler).
  uint64_t restart = 0;            // steps after a crash; 0 = never restart
  std::string restart_mode = "disk";  // disk|scratch
  bool restart_set = false;        // --restart given explicitly
  bool restart_mode_set = false;   // --restart-mode given explicitly
  // Active repair (with --crashes and --restart). --repair-every keeps the
  // string form: sweep mode accepts a comma list (one grid cell per rate,
  // the repair-bandwidth-vs-degraded-window curve in one command); the
  // other modes take a single value.
  std::string repair_every;        // anti-entropy pump period(s) in steps
  bool read_repair = false;        // reads push repair into open windows
  uint64_t repair_budget = UINT64_MAX;  // repair-push bit cap per run/shard
  // Link faults (single, sweep and store modes; random scheduler only).
  uint32_t partitions = 0;         // partition events to inject
  uint64_t heal = 512;             // auto-heal delay in steps
  uint32_t drop = 0;               // drop permyriad per triggered RMW
  uint64_t max_drops = UINT64_MAX;
  uint64_t reorder = 0;            // bounded reorder window W
  bool verify_accounting = false;  // force the accounting cross-check on
  // Scenario / campaign modes.
  std::string scenario;            // run one scenario file
  std::string campaign;            // comma list of scenario files
  std::string bundle_dir;          // triage bundles for campaign failures
  bool seed_set = false;           // --seed given explicitly
  // Observability (single, scenario, store and sweep modes).
  std::string trace;               // Chrome trace_event JSON output path
  std::string timeseries;          // per-step counter CSV output path
  uint32_t progress_every = 0;     // heartbeat every N units; 0 = silent
  // Sweep mode.
  bool sweep = false;
  std::string algs;            // comma list; default: the --alg value
  std::string cs = "1,2,4,8,16,32";  // concurrency grid
  uint32_t threads = 0;        // 0 = hardware concurrency
  uint32_t seeds = 1;          // seeds per cell
  std::string json;            // write sweep/store JSON here
  // Store mode (sharded multi-object engine with YCSB-style load).
  bool store = false;
  uint32_t keys = 128;
  uint32_t shards = 8;
  uint32_t clients = 4;
  uint32_t ops = 64;           // workload ops per client
  std::string dist = "zipfian";
  std::string mix = "B";
  uint32_t read_pct = 95;      // with --mix=custom
  double theta = 0.99;
  bool no_check = false;
  // Open-loop load (single, sweep and store modes).
  bool open_loop = false;
  std::string arrival = "poisson";  // fixed|burst|poisson with --open-loop
  double rate = 0.25;          // offered ops per step (per shard in --store)
  std::string burst;           // "ON,OFF" window lengths; implies burst
  bool help = false;
};

bool parse_flag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

template <typename Int>
bool parse_int_flag(const std::string& arg, const char* name, Int* out) {
  std::string s;
  if (!parse_flag(arg, name, &s)) return false;
  *out = static_cast<Int>(std::stoull(s));
  return true;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string s;
    if (arg == "--help" || arg == "-h") {
      o.help = true;
    } else if (arg == "--sweep") {
      o.sweep = true;
    } else if (arg == "--store") {
      o.store = true;
    } else if (arg == "--no-check") {
      o.no_check = true;
    } else if (arg == "--open-loop") {
      o.open_loop = true;
    } else if (arg == "--verify-accounting") {
      o.verify_accounting = true;
    } else if (arg == "--progress") {
      o.progress_every = 1;
    } else if (parse_int_flag(arg, "progress", &o.progress_every)) {
      // parsed (--progress=N)
    } else if (arg == "--read-repair") {
      o.read_repair = true;
    } else if (parse_int_flag(arg, "restart", &o.restart)) {
      o.restart_set = true;
    } else if (parse_flag(arg, "restart-mode", &o.restart_mode)) {
      o.restart_mode_set = true;
    } else if (parse_int_flag(arg, "seed", &o.seed)) {
      o.seed_set = true;
    } else if (parse_flag(arg, "theta", &s)) {
      o.theta = std::stod(s);
    } else if (parse_flag(arg, "rate", &s)) {
      o.rate = std::stod(s);
      o.open_loop = true;
    } else if (parse_flag(arg, "burst", &o.burst)) {
      o.open_loop = true;
      o.arrival = "burst";
    } else if (parse_flag(arg, "arrival", &o.arrival)) {
      o.open_loop = true;
    } else if (parse_flag(arg, "alg", &o.alg) ||
               parse_flag(arg, "backend", &o.backend) ||
               parse_flag(arg, "algs", &o.algs) ||
               parse_flag(arg, "sched", &o.sched) ||
               parse_flag(arg, "cs", &o.cs) ||
               parse_flag(arg, "json", &o.json) ||
               parse_flag(arg, "dist", &o.dist) ||
               parse_flag(arg, "mix", &o.mix) ||
               parse_int_flag(arg, "keys", &o.keys) ||
               parse_int_flag(arg, "shards", &o.shards) ||
               parse_int_flag(arg, "clients", &o.clients) ||
               parse_int_flag(arg, "ops", &o.ops) ||
               parse_int_flag(arg, "read-pct", &o.read_pct) ||
               parse_int_flag(arg, "f", &o.f) ||
               parse_int_flag(arg, "k", &o.k) ||
               parse_int_flag(arg, "data-bits", &o.data_bits) ||
               parse_int_flag(arg, "writers", &o.writers) ||
               parse_int_flag(arg, "writes", &o.writes) ||
               parse_int_flag(arg, "readers", &o.readers) ||
               parse_int_flag(arg, "reads", &o.reads) ||
               parse_int_flag(arg, "threads", &o.threads) ||
               parse_int_flag(arg, "seeds", &o.seeds) ||
               parse_int_flag(arg, "crashes", &o.crashes) ||
               parse_int_flag(arg, "partitions", &o.partitions) ||
               parse_int_flag(arg, "heal", &o.heal) ||
               parse_int_flag(arg, "drop", &o.drop) ||
               parse_int_flag(arg, "max-drops", &o.max_drops) ||
               parse_int_flag(arg, "reorder", &o.reorder) ||
               parse_flag(arg, "repair-every", &o.repair_every) ||
               parse_int_flag(arg, "repair-budget", &o.repair_budget) ||
               parse_flag(arg, "scenario", &o.scenario) ||
               parse_flag(arg, "campaign", &o.campaign) ||
               parse_flag(arg, "bundle-dir", &o.bundle_dir) ||
               parse_flag(arg, "trace", &o.trace) ||
               parse_flag(arg, "timeseries", &o.timeseries)) {
      // parsed
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      o.help = true;
    }
  }
  return o;
}

void usage() {
  std::cout <<
      "sbrs_cli — run a register algorithm on the simulated asynchronous "
      "shared memory\n\n"
      "single run:\n"
      "  --alg=adaptive|abd|abd-wb|coded|coded-atomic|safe|no-replica\n"
      "  --backend=sim|threads   execution backend (default sim). threads\n"
      "                  mounts the same protocol on real threads/channels\n"
      "                  (docs/runtime_backend.md): closed-loop fault-free\n"
      "                  only, latencies in wall-clock ns, real ops/s\n"
      "  --f=N           tolerated object crashes (default 2)\n"
      "  --k=N           erasure-code dimension (default 4; abd forces 1)\n"
      "  --data-bits=N   value size D in bits (default 4096)\n"
      "  --writers=N --writes=N --readers=N --reads=N   workload shape\n"
      "  --sched=random|rr|burst   scheduler (default random)\n"
      "  --seed=N        schedule seed (default 1)\n"
      "  --crashes=N     crash up to N objects at random points\n\n"
      "crash recovery (with --crashes; single, sweep and store modes):\n"
      "  --restart=N     restart each crashed object N steps after its\n"
      "                  crash (per-shard clock in --store mode); the\n"
      "                  restarted object's repair traffic is reported as\n"
      "                  repair_bits next to the degraded-window tails\n"
      "  --restart-mode=disk|scratch   re-join with the state frozen at\n"
      "                  crash time (disk, guarantees hold) or as an empty\n"
      "                  replacement replica (scratch, models disk loss)\n\n"
      "active repair (with --crashes and --restart; closes the restarted\n"
      "object's repair window without waiting for a foreground write):\n"
      "  --repair-every=N   background anti-entropy: push one repair RMW\n"
      "                  into every open repair window each N steps (random\n"
      "                  scheduler only); in --sweep mode a comma list runs\n"
      "                  one grid cell per rate — the repair-bandwidth vs\n"
      "                  degraded-window curve in one command\n"
      "  --read-repair   a read completing against a repairing object\n"
      "                  piggybacks a repair push (any scheduler)\n"
      "  --repair-budget=N   cap the repair-push bits per run (per shard\n"
      "                  in --store mode); pushes stop once spent\n\n"
      "link faults (single, sweep and store modes; random scheduler only):\n"
      "  --partitions=N  inject up to N partition events (symmetric whole-\n"
      "                  object cuts or asymmetric client-subset cuts);\n"
      "                  per shard in --store mode\n"
      "  --heal=N        auto-heal delay of each partition in steps\n"
      "                  (default 512)\n"
      "  --drop=N        drop each triggered RMW with probability N/10000\n"
      "  --max-drops=N   cap the probabilistic drops (keep <= f for\n"
      "                  liveness)\n"
      "  --reorder=W     bounded reordering: uniform per-RMW release offset\n"
      "                  in [0, W] steps\n"
      "  --verify-accounting   cross-check incremental storage accounting\n"
      "                  against full snapshots every step (slow; on by\n"
      "                  default in Debug builds)\n\n"
      "scenario / campaign modes (declarative fault experiments; see\n"
      "docs/scenario_schema.md and scenarios/):\n"
      "  --scenario=FILE run one scenario file and judge its expect block\n"
      "                  (--seed overrides the file's seed; exit 1 on any\n"
      "                  violation)\n"
      "  --campaign=F1,F2,...   sweep scenario files x --seeds seeds on\n"
      "                  --threads workers; exit 1 if any run fails\n"
      "  --bundle-dir=DIR       write a triage bundle per failed campaign\n"
      "                  run (scenario file, outcome, trace, one-line\n"
      "                  repro command)\n"
      "  (--json writes the campaign summary JSON)\n\n"
      "observability (see docs/observability.md):\n"
      "  --trace=PATH    write a Chrome trace_event JSON of the run —\n"
      "                  op spans, RMW message spans, partition/repair\n"
      "                  intervals, crash instants, counter tracks — open\n"
      "                  it in ui.perfetto.dev or chrome://tracing.\n"
      "                  Single, --scenario and --store modes trace the\n"
      "                  run itself (one process per store shard); --sweep\n"
      "                  re-runs cell 0 / seed 0 traced after the sweep.\n"
      "                  Deterministic: same seed, same bytes, any\n"
      "                  --threads value\n"
      "  --timeseries=PATH   write the per-step counter samples (queue\n"
      "                  depth, in-flight RMWs, stored bits, fault counts;\n"
      "                  one row per sampled step) as CSV — single and\n"
      "                  --store modes\n"
      "  --progress[=N]  heartbeat to stderr every N completed units\n"
      "                  (default 1) during --sweep and --campaign runs:\n"
      "                  done/total, failures so far, elapsed seconds\n\n"
      "open-loop load (applies to single, sweep and store modes):\n"
      "  --open-loop     schedule arrivals instead of closed-loop sessions\n"
      "                  (ops queue while sessions are busy; latency splits\n"
      "                  into service and sojourn time)\n"
      "  --arrival=fixed|burst|poisson   arrival process (default poisson)\n"
      "  --rate=X        offered ops per simulator step (per shard in\n"
      "                  --store mode); implies --open-loop\n"
      "  --burst=ON,OFF  on/off window lengths for --arrival=burst\n\n"
      "sweep mode (parallel grid over algorithms x concurrency):\n"
      "  --sweep         run the grid instead of a single experiment\n"
      "  --algs=a,b,c    algorithms to sweep (default: the --alg value)\n"
      "  --cs=1,2,4,...  writer-concurrency grid (default 1,2,4,8,16,32)\n"
      "  --seeds=N       seeds per cell (default 1)\n"
      "  --threads=N     worker threads (default: all hardware threads)\n"
      "  --json=PATH     export the sweep result as JSON\n"
      "  (the workload/scheduler flags above shape every cell;\n"
      "   use --sched=burst for the paper's storage-vs-concurrency curves)\n\n"
      "store mode (sharded multi-object engine, YCSB-style load):\n"
      "  --store         run the store engine instead of a single register\n"
      "  --keys=N --shards=N --clients=N --ops=N   keyspace and load shape\n"
      "  --dist=uniform|zipfian|latest   key popularity (default zipfian)\n"
      "  --mix=A|B|C|F|custom            YCSB mix (default B = 95%% reads)\n"
      "  --read-pct=N    read percentage for --mix=custom\n"
      "  --theta=X       zipfian constant (default 0.99)\n"
      "  --no-check      skip the per-key consistency checkers\n"
      "  (--backend=threads runs each shard's batch on the threaded\n"
      "   runtime: real ops/s, ns latencies, shard fingerprints 0;\n"
      "   --alg/--f/--k/--data-bits shape each shard's register pool;\n"
      "   --crashes crashes up to N objects per shard; --threads/--json\n"
      "   as in sweep mode — the JSON's \"deterministic\" block is\n"
      "   byte-identical for any --threads value)\n";
}

/// Write `content` to `path`; false (with a message on stderr) on failure.
bool write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  os << content;
  std::cout << "wrote " << path << "\n";
  return true;
}

/// The --progress heartbeat: a stderr line every `every` completed units
/// (and always on the last one). Campaign/sweep call it under an internal
/// mutex, so no synchronization is needed here.
std::function<void(size_t, size_t, size_t)> progress_reporter(
    uint32_t every, const char* unit) {
  if (every == 0) return {};
  const auto start = std::chrono::steady_clock::now();
  return [every, unit, start](size_t done, size_t total, size_t failures) {
    if (done % every != 0 && done != total) return;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::ostringstream line;  // one write: lines never interleave mid-row
    line << "progress: " << done << "/" << total << " " << unit << ", "
         << failures << " failure" << (failures == 1 ? "" : "s") << ", "
         << std::fixed << std::setprecision(1) << elapsed << "s elapsed\n";
    std::cerr << line.str();
  };
}

sbrs::harness::SchedKind sched_kind(const std::string& name) {
  if (name == "rr") return sbrs::harness::SchedKind::kRoundRobin;
  if (name == "burst") return sbrs::harness::SchedKind::kBurst;
  return sbrs::harness::SchedKind::kRandom;
}

sbrs::sim::ArrivalOptions arrival_options(const CliOptions& cli) {
  sbrs::sim::ArrivalOptions a;
  if (!cli.open_loop) return a;  // kClosedLoop
  a.process = sbrs::sim::parse_arrival_process(cli.arrival);
  a.rate = cli.rate;
  if (!cli.burst.empty()) {
    const auto parts = split_csv(cli.burst);
    if (parts.size() != 2) {
      throw std::invalid_argument("--burst wants ON,OFF window lengths, got '" +
                                  cli.burst + "'");
    }
    a.burst_on = std::stoull(parts[0]);
    a.burst_off = std::stoull(parts[1]);
  }
  // Reject unusable specs (--rate=0, negative rates, --burst=0,0) as a
  // usage error before any engine mounts — not as a division by zero or a
  // schedule that never releases an arrival deep inside a run.
  const std::string why = sbrs::sim::validate_arrival(a);
  if (!why.empty()) throw std::invalid_argument(why);
  return a;
}

sbrs::sim::LinkFaultOptions link_fault_options(const CliOptions& cli) {
  sbrs::sim::LinkFaultOptions lf;
  lf.drop_permyriad = cli.drop;
  lf.max_drops = cli.max_drops;
  lf.reorder_window = cli.reorder;
  return lf;
}

sbrs::sim::RestartMode restart_mode_of(const CliOptions& cli) {
  if (cli.restart_mode == "disk") return sbrs::sim::RestartMode::kFromDisk;
  if (cli.restart_mode == "scratch") {
    return sbrs::sim::RestartMode::kFromScratch;
  }
  throw std::invalid_argument("--restart-mode wants disk|scratch, got '" +
                              cli.restart_mode + "'");
}

/// The --repair-every rates: {} when the flag is absent, else every parsed
/// value. Only sweep mode accepts more than one (one grid cell per rate);
/// single/store callers take rates.front() after a size check in main().
std::vector<uint64_t> repair_rates(const CliOptions& cli) {
  std::vector<uint64_t> rates;
  for (const auto& r : split_csv(cli.repair_every)) {
    rates.push_back(std::stoull(r));
  }
  return rates;
}

sbrs::registers::RegisterConfig base_config(const CliOptions& cli) {
  sbrs::registers::RegisterConfig cfg;
  cfg.f = cli.f;
  cfg.k = cli.k;
  cfg.n = 2 * cli.f + cli.k;
  cfg.data_bits = cli.data_bits;
  return cfg;
}

int run_sweep(const CliOptions& cli) {
  using namespace sbrs;
  const auto algs = split_csv(cli.algs.empty() ? cli.alg : cli.algs);
  const auto cs = split_csv(cli.cs);
  // --repair-every=40,160,640 fans each (alg, c) point out into one cell
  // per anti-entropy rate: the exported cells then differ only in
  // repair_every, which is exactly the repair-bandwidth (repair_bits) vs
  // degraded-window (degraded_steps, degraded_sojourn) tradeoff curve.
  std::vector<uint64_t> rates = repair_rates(cli);
  if (rates.empty()) rates.push_back(0);

  std::vector<harness::SweepCell> grid;
  for (const auto& alg : algs) {
    for (const auto& c_str : cs) {
      for (uint64_t rate : rates) {
        harness::SweepCell cell;
        cell.algorithm = alg;
        cell.config = base_config(cli);
        cell.opts.writers = static_cast<uint32_t>(std::stoul(c_str));
        cell.opts.writes_per_client = cli.writes;
        cell.opts.readers = cli.readers;
        cell.opts.reads_per_client = cli.reads;
        cell.opts.scheduler = sched_kind(cli.sched);
        cell.opts.object_crashes = cli.crashes;
        cell.opts.restart_after = cli.restart;
        cell.opts.restart_mode = restart_mode_of(cli);
        cell.opts.partitions = cli.partitions;
        cell.opts.heal_after = cli.heal;
        cell.opts.link_faults = link_fault_options(cli);
        if (cli.verify_accounting) cell.opts.verify_accounting = true;
        cell.opts.arrival = arrival_options(cli);
        cell.opts.repair_every = rate;
        cell.opts.read_repair = cli.read_repair;
        cell.opts.repair_budget = cli.repair_budget;
        cell.label = alg + " c=" + c_str;
        // Repair-free sweeps keep their pre-repair labels (and artifacts)
        // byte-identical; only an explicit --repair-every tags the cells.
        if (!cli.repair_every.empty()) {
          cell.label += " r=" + std::to_string(rate);
        }
        grid.push_back(std::move(cell));
      }
    }
  }

  harness::SweepOptions so;
  so.threads = cli.threads;
  so.seeds_per_cell = cli.seeds;
  so.base_seed = cli.seed;
  so.progress = progress_reporter(cli.progress_every, "runs");
  auto result = harness::SweepRunner(so).run(grid);

  harness::Table table({"cell", "max object bits (p50/max)",
                        "max total bits (max)", "steps (p50)", "steps/s",
                        "checks"});
  for (const auto& cell : result.cells) {
    table.add_row(cell.cell.label,
                  std::to_string(cell.max_object_bits.p50) + " / " +
                      std::to_string(cell.max_object_bits.max),
                  cell.max_total_bits.max, cell.steps.p50,
                  static_cast<uint64_t>(cell.steps_per_sec),
                  cell.consistency_failures == 0
                      ? "ok"
                      : std::to_string(cell.consistency_failures) + " FAIL");
  }
  table.print();
  std::cout << "sweep: " << grid.size() << " cells x " << cli.seeds
            << " seeds on " << result.threads_used << " threads in "
            << result.wall_seconds << "s\n";

  if (!cli.json.empty()) {
    std::ofstream os(cli.json);
    if (!os) {
      std::cerr << "cannot write " << cli.json << "\n";
      return 1;
    }
    harness::write_sweep_json(os, result);
    std::cout << "wrote " << cli.json << "\n";
  }

  if (!cli.trace.empty()) {
    // Opt-in structured trace of the sweep: a deterministic traced replay
    // of cell 0 / seed 0 (tracing every cell of a big grid would be
    // gigabytes; one exemplar cell is what a Perfetto look wants).
    obs::TraceRecorder rec;
    harness::RunOptions opts = grid[0].opts;
    opts.seed = harness::cell_seed(so.base_seed, 0, 0);
    opts.check_consistency = so.check_consistency;
    opts.trace = &rec;
    auto algorithm = harness::make_algorithm(grid[0].algorithm, grid[0].config);
    harness::run_register_experiment(*algorithm, opts);
    rec.annotate("cell", grid[0].label);
    rec.annotate("seed", std::to_string(opts.seed));
    std::ostringstream ts;
    obs::write_trace_json(ts, rec);
    if (!write_file(cli.trace, ts.str())) return 1;
  }
  return 0;
}

int run_store(const CliOptions& cli) {
  using namespace sbrs;
  store::StoreOptions opts;
  opts.backend = harness::parse_backend(cli.backend);
  opts.algorithm = cli.alg;
  opts.register_config = base_config(cli);
  opts.num_shards = cli.shards;
  opts.workload.num_keys = cli.keys;
  opts.workload.clients = cli.clients;
  opts.workload.ops_per_client = cli.ops;
  opts.workload.mix = store::ycsb::parse_mix(cli.mix);
  opts.workload.read_percent = cli.read_pct;
  opts.workload.distribution = store::ycsb::parse_distribution(cli.dist);
  opts.workload.zipf_theta = cli.theta;
  opts.workload.seed = cli.seed;
  opts.arrival = arrival_options(cli);
  opts.scheduler = sched_kind(cli.sched);
  opts.object_crashes_per_shard = cli.crashes;
  opts.restart_after = cli.restart;
  opts.restart_mode = restart_mode_of(cli);
  opts.partitions_per_shard = cli.partitions;
  opts.heal_after = cli.heal;
  opts.link_faults = link_fault_options(cli);
  {
    const auto rates = repair_rates(cli);
    if (rates.size() > 1) {
      throw std::invalid_argument(
          "--repair-every takes one value outside --sweep mode");
    }
    if (!rates.empty()) opts.repair_every = rates.front();
  }
  opts.read_repair = cli.read_repair;
  opts.repair_budget = cli.repair_budget;
  if (cli.verify_accounting) opts.verify_accounting = true;
  opts.seed = cli.seed;
  opts.threads = cli.threads;
  opts.check_consistency = !cli.no_check;
  opts.trace = !cli.trace.empty() || !cli.timeseries.empty();

  store::Store store_engine(opts);
  store::StoreResult result = store_engine.run();

  const bool open = sim::open_loop(opts.arrival);
  // Latency columns label their unit (logical steps on the simulator,
  // wall-clock ns on the threaded backend) from the histograms themselves.
  const std::string lat_unit =
      std::string(" (") + metrics::unit_suffix(result.read_latency.unit()) +
      ")";
  harness::Table table({"shard", "keys", "ops", "peak object bits",
                        "final bits", "read p50/p99" + lat_unit,
                        (open ? "sojourn p50/p99" : "write p50/p99") + lat_unit,
                        open ? "qdepth/left" : "checks",
                        open ? "sat" : "live"});
  for (const auto& s : result.shards) {
    table.add_row(
        s.shard, s.keys_mounted, s.report.completed_ops, s.max_object_bits,
        s.final_object_bits,
        std::to_string(s.read_latency.p50()) + " / " +
            std::to_string(s.read_latency.p99()),
        open ? std::to_string(s.report.sojourn_latency.p50()) + " / " +
                   std::to_string(s.report.sojourn_latency.p99())
             : std::to_string(s.write_latency.p50()) + " / " +
                   std::to_string(s.write_latency.p99()),
        open ? std::to_string(s.max_queue_depth) + " / " +
                   std::to_string(s.undispatched)
             : (s.keys_checked == 0
                    ? "-"
                    : (s.consistency_failures == 0
                           ? "ok"
                           : std::to_string(s.consistency_failures) +
                                 " FAIL")),
        open ? (s.saturated ? "SAT" : "no") : (s.live ? "yes" : "NO"));
  }
  table.print();

  std::cout << "store: " << cli.keys << " keys x " << cli.shards
            << " shards, mix " << store::ycsb::to_string(opts.workload.mix)
            << " over " << store::ycsb::to_string(opts.workload.distribution)
            << " keys, backend " << harness::to_string(opts.backend) << ", "
            << (result.completed_reads + result.completed_writes)
            << " ops in " << result.wall_seconds << "s ("
            << static_cast<uint64_t>(result.ops_per_sec) << " ops/s on "
            << result.threads_used << " threads)\n"
            << "merged read p50/p99/p999: " << result.read_latency.p50()
            << " / " << result.read_latency.p99() << " / "
            << result.read_latency.p999() << " "
            << metrics::unit_suffix(result.read_latency.unit())
            << "; write p50/p99: " << result.write_latency.p50() << " / "
            << result.write_latency.p99() << "\n"
            << "peak storage (sum of shard peaks): "
            << result.peak_total_bits_sum << " bits; hottest shard "
            << result.max_shard_object_bits << " object bits; "
            << result.keys_checked << " keys checked, "
            << result.consistency_failures << " failures\n";
  if (result.object_crash_events > 0) {
    std::cout << "recovery: " << result.object_crash_events
              << " object crashes, " << result.object_restarts
              << " restarts (" << sim::to_string(opts.restart_mode)
              << "), repair traffic " << result.repair_bits
              << " bits over " << result.degraded_steps
              << " degraded steps; degraded sojourn p50/p99 "
              << result.degraded_sojourn.p50() << " / "
              << result.degraded_sojourn.p99() << " steps ("
              << result.degraded_sojourn.count() << " ops)\n";
    if (result.repair_pushes > 0 || result.open_repair_windows > 0) {
      std::cout << "active repair: " << result.repair_pushes
                << " pushes (read-repair + anti-entropy), "
                << result.open_repair_windows
                << " repair window(s) still open at run end\n";
    }
  }
  if (open) {
    std::cout << "open-loop " << sim::to_string(opts.arrival.process)
              << " @ rate " << opts.arrival.rate
              << " ops/step/shard: service p50/p99 "
              << result.service_latency.p50() << " / "
              << result.service_latency.p99() << " steps, sojourn p50/p99 "
              << result.sojourn_latency.p50() << " / "
              << result.sojourn_latency.p99() << " steps, max queue depth "
              << result.max_queue_depth << ", undispatched "
              << result.undispatched
              << (result.saturated ? " — SATURATED\n" : "\n");
  }

  if (!cli.json.empty()) {
    std::ofstream os(cli.json);
    if (!os) {
      std::cerr << "cannot write " << cli.json << "\n";
      return 1;
    }
    store::write_store_json(os, result);
    std::cout << "wrote " << cli.json << "\n";
  }
  if (!cli.trace.empty()) {
    std::ostringstream ts;
    store::write_store_trace_json(ts, store_engine);
    if (!write_file(cli.trace, ts.str())) return 1;
  }
  if (!cli.timeseries.empty()) {
    std::ostringstream ts;
    store::write_store_timeseries_csv(ts, store_engine);
    if (!write_file(cli.timeseries, ts.str())) return 1;
  }
  if (!result.all_quiesced) {
    std::cerr << "store run did not quiesce (step limit or scheduler stop "
                 "left queued operations unexecuted)\n";
  }
  // A *saturated* open-loop run legitimately ends with queued work and
  // outstanding ops — that's the measurement, not a failure. An open-loop
  // run that did NOT saturate has no excuse: a wedged op or unexecuted
  // queue there is a liveness bug and must exit non-zero like any
  // closed-loop run.
  const bool drained_ok =
      result.saturated || (result.all_live && result.all_quiesced);
  return result.consistency_failures == 0 && drained_ok ? 0 : 1;
}

int run_scenario_file(const CliOptions& cli) {
  using namespace sbrs;
  const harness::Scenario scenario = harness::load_scenario(cli.scenario);
  const uint64_t file_seed = scenario.mode == "register"
                                 ? scenario.run.seed
                                 : scenario.store_opts.seed;
  const uint64_t seed = cli.seed_set ? cli.seed : file_seed;
  std::string trace_json;
  const harness::ScenarioOutcome out = harness::run_scenario(
      scenario, seed, cli.trace.empty() ? nullptr : &trace_json);
  if (!cli.trace.empty() && !write_file(cli.trace, trace_json)) return 1;

  harness::Table table({"metric", "value"});
  table.add_row("scenario", out.name);
  table.add_row("mode", out.mode);
  table.add_row("seed", out.seed);
  table.add_row("steps", out.steps);
  table.add_row("stop reason", out.stop_reason);
  table.add_row("peak total bits", out.max_total_bits);
  table.add_row("partitions / heals", std::to_string(out.partition_events) +
                                          " / " +
                                          std::to_string(out.heal_events));
  table.add_row("rmws dropped / delayed",
                std::to_string(out.rmws_dropped) + " / " +
                    std::to_string(out.rmws_delayed));
  table.add_row("degraded steps", out.degraded_steps);
  if (out.object_crash_events > 0 || out.repair_pushes > 0) {
    table.add_row("object crashes / restarts",
                  std::to_string(out.object_crash_events) + " / " +
                      std::to_string(out.object_restarts));
    table.add_row("repair pushes / bits",
                  std::to_string(out.repair_pushes) + " / " +
                      std::to_string(out.repair_bits));
    table.add_row("open repair windows", out.open_repair_windows);
  }
  table.add_row("fingerprint", [&] {
    std::ostringstream fp;
    fp << std::hex << out.fingerprint;
    return fp.str();
  }());
  table.add_row("verdict", out.ok ? "PASS" : "FAIL");
  table.print();

  for (const auto& v : out.violations) {
    std::cout << "violation: " << v << "\n";
  }
  if (!out.ok) {
    std::cout << "repro: " << harness::repro_command(scenario, seed) << "\n";
  }
  return out.ok ? 0 : 1;
}

int run_campaign_cli(const CliOptions& cli) {
  using namespace sbrs;
  harness::CampaignOptions opts;
  opts.scenario_files = split_csv(cli.campaign);
  opts.seeds_per_scenario = cli.seeds;
  opts.base_seed = cli.seed;
  opts.threads = cli.threads;
  opts.bundle_dir = cli.bundle_dir;
  opts.progress = progress_reporter(cli.progress_every, "runs");
  const harness::CampaignResult result = harness::run_campaign(opts);

  harness::Table table(
      {"scenario", "seed", "verdict", "stop", "partitions", "drops",
       "violations"});
  for (const auto& run : result.runs) {
    table.add_row(run.scenario, run.seed, run.outcome.ok ? "pass" : "FAIL",
                  run.outcome.stop_reason, run.outcome.partition_events,
                  run.outcome.rmws_dropped,
                  run.outcome.violations.empty()
                      ? "-"
                      : run.outcome.violations.front());
  }
  table.print();
  std::cout << "campaign: " << result.runs.size() << " runs ("
            << opts.scenario_files.size() << " scenarios x " << cli.seeds
            << " seeds) on " << result.threads_used << " threads in "
            << result.wall_seconds << "s — " << result.failures
            << " failed\n";
  for (const auto& run : result.runs) {
    if (!run.bundle_path.empty()) {
      std::cout << "triage bundle: " << run.bundle_path << "\n";
    }
  }
  if (!cli.json.empty()) {
    std::ofstream os(cli.json);
    if (!os) {
      std::cerr << "cannot write " << cli.json << "\n";
      return 1;
    }
    harness::write_campaign_json(os, result);
    std::cout << "wrote " << cli.json << "\n";
  }
  return result.ok() ? 0 : 1;
}

}  // namespace

int run_cli(const CliOptions& cli);

int main(int argc, char** argv) {
  // Bad flag *values* (malformed numbers from parse(), unknown algorithms,
  // invalid register shapes from the library) surface as exceptions; turn
  // them into the same usage-and-exit-2 path as unknown flags instead of
  // aborting.
  try {
    const CliOptions cli = parse(argc, argv);
    if (cli.help) {
      usage();
      return 2;
    }
    // Recovery knobs without anything that crashes are a spec contradiction
    // — the run would silently never restart anything. Scenario/campaign
    // modes carry their fault plan in the file, not these flags.
    if ((cli.restart_set || cli.restart_mode_set) && cli.crashes == 0 &&
        cli.scenario.empty() && cli.campaign.empty()) {
      throw std::invalid_argument(
          "--restart/--restart-mode need a crash-producing knob "
          "(--crashes > 0): nothing would ever crash, so nothing could "
          "restart");
    }
    // Same contradiction for the active-repair knobs: repair windows only
    // open when a crashed object restarts, so repair flags without
    // --crashes + --restart would silently never fire.
    if ((!cli.repair_every.empty() || cli.read_repair) &&
        (cli.crashes == 0 || !cli.restart_set) && cli.scenario.empty() &&
        cli.campaign.empty()) {
      throw std::invalid_argument(
          "--repair-every/--read-repair need open repair windows to act "
          "on: pass --crashes > 0 and --restart so restarted objects "
          "actually enter a repair window");
    }
    if (!cli.scenario.empty()) return run_scenario_file(cli);
    if (!cli.campaign.empty()) return run_campaign_cli(cli);
    if (cli.store) return run_store(cli);
    return cli.sweep ? run_sweep(cli) : run_cli(cli);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    usage();
    return 2;
  }
}

int run_cli(const CliOptions& cli) {
  using namespace sbrs;
  std::unique_ptr<registers::RegisterAlgorithm> algorithm =
      harness::make_algorithm(cli.alg, base_config(cli));

  harness::RunOptions opts;
  opts.writers = cli.writers;
  opts.writes_per_client = cli.writes;
  opts.readers = cli.readers;
  opts.reads_per_client = cli.reads;
  opts.seed = cli.seed;
  opts.object_crashes = cli.crashes;
  opts.restart_after = cli.restart;
  opts.restart_mode = restart_mode_of(cli);
  opts.partitions = cli.partitions;
  opts.heal_after = cli.heal;
  opts.link_faults = link_fault_options(cli);
  {
    const auto rates = repair_rates(cli);
    if (rates.size() > 1) {
      throw std::invalid_argument(
          "--repair-every takes one value outside --sweep mode");
    }
    if (!rates.empty()) opts.repair_every = rates.front();
  }
  opts.read_repair = cli.read_repair;
  opts.repair_budget = cli.repair_budget;
  if (cli.verify_accounting) opts.verify_accounting = true;
  opts.scheduler = sched_kind(cli.sched);
  opts.arrival = arrival_options(cli);
  opts.backend = harness::parse_backend(cli.backend);
  {
    // Fault knobs that can't work with this scheduler or backend are a
    // usage error (exit 2), not a CHECK failure deep inside the run.
    const std::string why = harness::validate_fault_options(opts);
    if (!why.empty()) throw std::invalid_argument(why);
    const std::string bwhy = harness::validate_backend_options(opts);
    if (!bwhy.empty()) throw std::invalid_argument(bwhy);
  }
  obs::TraceRecorder recorder;
  const bool tracing = !cli.trace.empty() || !cli.timeseries.empty();
  if (tracing) {
    if (opts.backend == harness::Backend::kThreads) {
      throw std::invalid_argument(
          "--trace/--timeseries record simulator step streams — they need "
          "--backend=sim");
    }
    opts.trace = &recorder;
  }

  auto out = harness::run_register_experiment(*algorithm, opts);

  harness::Table table({"metric", "value"});
  table.add_row("algorithm", out.algorithm);
  table.add_row("n / k / f", std::to_string(algorithm->config().n) + " / " +
                                 std::to_string(algorithm->config().k) +
                                 " / " + std::to_string(algorithm->config().f));
  if (out.backend == harness::Backend::kThreads) {
    // Threaded runtime: real clocks — report wall time, throughput, and the
    // per-kind nanosecond tails next to the logical metrics.
    const std::string u =
        std::string(" (") + metrics::unit_suffix(out.report.op_latency.unit()) +
        ")";
    std::ostringstream wall;
    wall << std::fixed << std::setprecision(4) << out.wall_seconds << " s";
    table.add_row("backend", harness::to_string(out.backend));
    table.add_row("wall time", wall.str());
    table.add_row("throughput (ops/s)",
                  out.wall_seconds > 0.0
                      ? static_cast<uint64_t>(out.report.completed_ops /
                                              out.wall_seconds)
                      : 0);
    table.add_row("op p50/p99" + u,
                  std::to_string(out.report.op_latency.p50()) + " / " +
                      std::to_string(out.report.op_latency.p99()));
    if (!out.read_latency.empty()) {
      table.add_row("read p50/p99" + u,
                    std::to_string(out.read_latency.p50()) + " / " +
                        std::to_string(out.read_latency.p99()));
    }
    if (!out.write_latency.empty()) {
      table.add_row("write p50/p99" + u,
                    std::to_string(out.write_latency.p50()) + " / " +
                        std::to_string(out.write_latency.p99()));
    }
  }
  table.add_row("steps", out.report.steps);
  table.add_row("ops invoked / completed",
                std::to_string(out.report.invoked_ops) + " / " +
                    std::to_string(out.report.completed_ops));
  table.add_row("rmws triggered / delivered",
                std::to_string(out.report.rmws_triggered) + " / " +
                    std::to_string(out.report.rmws_delivered));
  table.add_row("peak object storage (bits)", out.max_object_bits);
  table.add_row("peak channel bits", out.max_channel_bits);
  table.add_row("final object storage (bits)", out.final_object_bits);
  table.add_row("values legal", out.values_legal.ok ? "yes" : "NO");
  table.add_row("weakly regular", out.weak_regular.ok ? "yes" : "NO");
  table.add_row("strongly regular", out.strong_regular.ok ? "yes" : "NO");
  table.add_row("strongly safe", out.strongly_safe.ok ? "yes" : "NO");
  table.add_row("atomic",
                consistency::check_atomicity(out.history).ok ? "yes" : "NO");
  table.add_row("live", out.live ? "yes" : "NO");
  if (out.report.partition_events > 0 || out.report.rmws_dropped > 0 ||
      out.report.rmws_delayed > 0) {
    table.add_row("partitions / heals",
                  std::to_string(out.report.partition_events) + " / " +
                      std::to_string(out.report.heal_events));
    table.add_row("rmws dropped / delayed",
                  std::to_string(out.report.rmws_dropped) + " / " +
                      std::to_string(out.report.rmws_delayed));
    table.add_row("stop reason", out.report.stop_reason);
  }
  if (out.report.object_crash_events > 0) {
    table.add_row("object crashes / restarts",
                  std::to_string(out.report.object_crash_events) + " / " +
                      std::to_string(out.report.object_restarts));
    table.add_row("repair bits", out.report.repair_bits);
    if (out.report.repair_pushes > 0 || out.report.open_repair_windows > 0) {
      table.add_row("repair pushes / open windows",
                    std::to_string(out.report.repair_pushes) + " / " +
                        std::to_string(out.report.open_repair_windows));
    }
    table.add_row("degraded steps", out.report.degraded_steps);
    table.add_row("degraded sojourn p50/p99 (steps)",
                  std::to_string(out.report.degraded_sojourn.p50()) + " / " +
                      std::to_string(out.report.degraded_sojourn.p99()));
  }
  if (sbrs::sim::open_loop(opts.arrival)) {
    table.add_row("service p50/p99 (steps)",
                  std::to_string(out.report.op_latency.p50()) + " / " +
                      std::to_string(out.report.op_latency.p99()));
    table.add_row("sojourn p50/p99 (steps)",
                  std::to_string(out.report.sojourn_latency.p50()) + " / " +
                      std::to_string(out.report.sojourn_latency.p99()));
    table.add_row("max queue depth", out.max_queue_depth);
    table.add_row("undispatched", out.undispatched);
    table.add_row("saturated", out.saturated ? "YES" : "no");
  }
  table.print();

  if (!out.values_legal.ok) std::cout << out.values_legal.summary() << "\n";
  if (!out.weak_regular.ok) std::cout << out.weak_regular.summary() << "\n";

  if (tracing) {
    recorder.annotate("algorithm", out.algorithm);
    recorder.annotate("seed", std::to_string(opts.seed));
    if (!cli.trace.empty()) {
      std::ostringstream ts;
      obs::write_trace_json(ts, recorder);
      if (!write_file(cli.trace, ts.str())) return 1;
    }
    if (!cli.timeseries.empty()) {
      std::ostringstream ts;
      obs::write_timeseries_csv(ts, {{&recorder, 0, "sim"}});
      if (!write_file(cli.timeseries, ts.str())) return 1;
    }
  }
  return 0;
}
