// sbrs_cli — command-line experiment runner.
//
// Run any of the register algorithms under a configurable workload and
// scheduler, print the storage/consistency outcome, and optionally dump the
// storage time series as CSV. Useful for ad-hoc exploration beyond the
// fixed sweeps in bench/.
//
//   $ ./examples/sbrs_cli --alg=adaptive --f=2 --k=4 --writers=6
//         (--writes=2 --readers=2 --reads=2 --seed=7 --crashes=2 ...)
//   $ ./examples/sbrs_cli --alg=coded --writers=16 --sched=burst
//   $ ./examples/sbrs_cli --help
#include <cstring>
#include <iostream>
#include <string>

#include "bounds/formulas.h"
#include "harness/runner.h"
#include "harness/table.h"

namespace {

struct CliOptions {
  std::string alg = "adaptive";
  uint32_t f = 2;
  uint32_t k = 4;
  uint64_t data_bits = 4096;
  uint32_t writers = 2;
  uint32_t writes = 2;
  uint32_t readers = 2;
  uint32_t reads = 2;
  uint64_t seed = 1;
  std::string sched = "random";
  uint32_t crashes = 0;
  bool help = false;
};

bool parse_flag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

template <typename Int>
bool parse_int_flag(const std::string& arg, const char* name, Int* out) {
  std::string s;
  if (!parse_flag(arg, name, &s)) return false;
  *out = static_cast<Int>(std::stoull(s));
  return true;
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string s;
    if (arg == "--help" || arg == "-h") {
      o.help = true;
    } else if (parse_flag(arg, "alg", &o.alg) ||
               parse_flag(arg, "sched", &o.sched) ||
               parse_int_flag(arg, "f", &o.f) ||
               parse_int_flag(arg, "k", &o.k) ||
               parse_int_flag(arg, "data-bits", &o.data_bits) ||
               parse_int_flag(arg, "writers", &o.writers) ||
               parse_int_flag(arg, "writes", &o.writes) ||
               parse_int_flag(arg, "readers", &o.readers) ||
               parse_int_flag(arg, "reads", &o.reads) ||
               parse_int_flag(arg, "seed", &o.seed) ||
               parse_int_flag(arg, "crashes", &o.crashes)) {
      // parsed
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      o.help = true;
    }
  }
  return o;
}

void usage() {
  std::cout <<
      "sbrs_cli — run a register algorithm on the simulated asynchronous "
      "shared memory\n\n"
      "  --alg=adaptive|abd|abd-wb|coded|coded-atomic|safe|no-replica\n"
      "  --f=N           tolerated object crashes (default 2)\n"
      "  --k=N           erasure-code dimension (default 4; abd forces 1)\n"
      "  --data-bits=N   value size D in bits (default 4096)\n"
      "  --writers=N --writes=N --readers=N --reads=N   workload shape\n"
      "  --sched=random|rr|burst   scheduler (default random)\n"
      "  --seed=N        schedule seed (default 1)\n"
      "  --crashes=N     crash up to N objects at random points\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sbrs;
  const CliOptions cli = parse(argc, argv);
  if (cli.help) {
    usage();
    return 2;
  }

  registers::RegisterConfig cfg;
  cfg.f = cli.f;
  cfg.k = cli.k;
  cfg.n = 2 * cli.f + cli.k;
  cfg.data_bits = cli.data_bits;

  std::unique_ptr<registers::RegisterAlgorithm> algorithm;
  if (cli.alg == "adaptive") {
    algorithm = registers::make_adaptive(cfg);
  } else if (cli.alg == "no-replica") {
    registers::AdaptiveOptions o;
    o.enable_replica_path = false;
    o.vp_unbounded = true;
    algorithm = registers::make_adaptive(cfg, o);
  } else if (cli.alg == "abd" || cli.alg == "abd-wb") {
    registers::RegisterConfig abd = cfg;
    abd.k = 1;
    abd.n = 2 * cli.f + 1;
    registers::AbdOptions o;
    o.write_back = (cli.alg == "abd-wb");
    algorithm = registers::make_abd(abd, o);
  } else if (cli.alg == "coded") {
    algorithm = registers::make_coded(cfg);
  } else if (cli.alg == "coded-atomic") {
    algorithm = registers::make_coded_atomic(cfg);
  } else if (cli.alg == "safe") {
    algorithm = registers::make_safe(cfg);
  } else {
    std::cerr << "unknown --alg=" << cli.alg << "\n";
    usage();
    return 2;
  }

  harness::RunOptions opts;
  opts.writers = cli.writers;
  opts.writes_per_client = cli.writes;
  opts.readers = cli.readers;
  opts.reads_per_client = cli.reads;
  opts.seed = cli.seed;
  opts.object_crashes = cli.crashes;
  if (cli.sched == "rr") {
    opts.scheduler = harness::SchedKind::kRoundRobin;
  } else if (cli.sched == "burst") {
    opts.scheduler = harness::SchedKind::kBurst;
  } else {
    opts.scheduler = harness::SchedKind::kRandom;
  }

  auto out = harness::run_register_experiment(*algorithm, opts);

  harness::Table table({"metric", "value"});
  table.add_row("algorithm", out.algorithm);
  table.add_row("n / k / f", std::to_string(algorithm->config().n) + " / " +
                                 std::to_string(algorithm->config().k) +
                                 " / " + std::to_string(algorithm->config().f));
  table.add_row("steps", out.report.steps);
  table.add_row("ops invoked / completed",
                std::to_string(out.report.invoked_ops) + " / " +
                    std::to_string(out.report.completed_ops));
  table.add_row("rmws triggered / delivered",
                std::to_string(out.report.rmws_triggered) + " / " +
                    std::to_string(out.report.rmws_delivered));
  table.add_row("peak object storage (bits)", out.max_object_bits);
  table.add_row("peak channel bits", out.max_channel_bits);
  table.add_row("final object storage (bits)", out.final_object_bits);
  table.add_row("values legal", out.values_legal.ok ? "yes" : "NO");
  table.add_row("weakly regular", out.weak_regular.ok ? "yes" : "NO");
  table.add_row("strongly regular", out.strong_regular.ok ? "yes" : "NO");
  table.add_row("strongly safe", out.strongly_safe.ok ? "yes" : "NO");
  table.add_row("atomic",
                consistency::check_atomicity(out.history).ok ? "yes" : "NO");
  table.add_row("live", out.live ? "yes" : "NO");
  table.print();

  if (!out.values_legal.ok) std::cout << out.values_legal.summary() << "\n";
  if (!out.weak_regular.ok) std::cout << out.weak_regular.summary() << "\n";
  return 0;
}
