// Quickstart: emulate a fault-tolerant MWMR register with the paper's
// adaptive algorithm, run a small read/write workload on the simulated
// asynchronous shared memory, and verify the run is strongly regular.
//
//   $ ./examples/quickstart
#include <iostream>

#include "harness/runner.h"
#include "harness/table.h"

int main() {
  using namespace sbrs;

  // 1. Pick the system shape: tolerate f = 2 base-object crashes with a
  //    k = 4 erasure code over n = 2f + k = 8 objects; values are 4 KiB.
  registers::RegisterConfig cfg;
  cfg.f = 2;
  cfg.k = 4;
  cfg.n = 2 * cfg.f + cfg.k;
  cfg.data_bits = 4096 * 8;

  // 2. Instantiate the paper's adaptive algorithm (Section 5).
  auto algorithm = registers::make_adaptive(cfg);
  std::cout << "algorithm : " << algorithm->name() << "\n"
            << "objects   : n = " << cfg.n << " (tolerating f = " << cfg.f
            << " crashes)\n"
            << "value size: D = " << cfg.data_bits << " bits\n\n";

  // 3. Run a workload: 3 writers x 4 writes, 2 readers x 4 reads, under a
  //    seeded random asynchronous schedule with 2 object crashes injected.
  harness::RunOptions opts;
  opts.writers = 3;
  opts.writes_per_client = 4;
  opts.readers = 2;
  opts.reads_per_client = 4;
  opts.object_crashes = cfg.f;
  opts.seed = 2026;
  auto out = harness::run_register_experiment(*algorithm, opts);

  // 4. Inspect the outcome.
  harness::Table table({"metric", "value"});
  table.add_row("operations invoked", out.report.invoked_ops);
  table.add_row("operations completed", out.report.completed_ops);
  table.add_row("RMWs delivered", out.report.rmws_delivered);
  table.add_row("peak object storage (bits)", out.max_object_bits);
  table.add_row("peak total storage w/ channels (bits)", out.max_total_bits);
  table.add_row("final object storage (bits)", out.final_object_bits);
  table.add_row("weakly regular", out.weak_regular.ok ? "yes" : "NO");
  table.add_row("strongly regular", out.strong_regular.ok ? "yes" : "NO");
  table.add_row("all ops by live clients returned", out.live ? "yes" : "NO");
  table.print();

  if (!out.strong_regular.ok) {
    std::cerr << out.strong_regular.summary() << "\n";
    return 1;
  }
  std::cout << "\nEvery read returned a value consistent with strong "
               "regularity despite asynchrony and " << cfg.f
            << " crashed objects.\n";
  return 0;
}
