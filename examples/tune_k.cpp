// Capacity-planning walkthrough: how to choose the code dimension k.
//
// For a fixed fault tolerance f, larger k means cheaper quiescent storage
// (n D / k with n = 2f + k) but a lower concurrency ceiling before the
// adaptive register switches to full replicas (at c ~ k). This example
// sweeps k and prints the storage envelope at several concurrency levels,
// ending with the paper's recommendation k = f, which balances the two
// regimes into Theta(min(f, c) D).
//
//   $ ./examples/tune_k
#include <iostream>

#include "bounds/formulas.h"
#include "harness/runner.h"
#include "harness/table.h"

int main() {
  using namespace sbrs;

  const uint32_t f = 4;
  const uint64_t D = 8 * 4096;  // 4 KiB values

  std::cout << "tune-k demo: f=" << f << ", D=" << D
            << " bits; measured peak object storage of the adaptive "
               "register for varying k and concurrency c\n\n";

  harness::Table table({"k", "n=2f+k", "quiescent nD/k", "c=1", "c=4",
                        "c=16", "replica cap 2nD"});
  for (uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
    registers::RegisterConfig cfg;
    cfg.f = f;
    cfg.k = k;
    cfg.n = 2 * f + k;
    cfg.data_bits = D;
    auto algorithm = registers::make_adaptive(cfg);

    auto peak = [&](uint32_t c) {
      harness::RunOptions opts;
      opts.writers = c;
      opts.writes_per_client = 1;
      opts.scheduler = harness::SchedKind::kBurst;
      opts.sample_every = 64;
      return harness::run_register_experiment(*algorithm, opts)
          .max_object_bits;
    };

    table.add_row(k, cfg.n, bounds::adaptive_quiescent_bits(f, k, D),
                  peak(1), peak(4), peak(16),
                  2ull * cfg.n * D);
  }
  table.print();

  std::cout
      << "\nReading the table:\n"
      << "  - k=1 is plain replication: flat but expensive, ~" << 2 * f + 1
      << "x the data size at rest.\n"
      << "  - large k is cheap at rest (nD/k -> D) but hits the replica cap "
         "already at moderate concurrency, paying 2nD ~ 2(2f+k)D.\n"
      << "  - k = f (the paper's choice) makes both regimes O(min(f, c) D): "
         "~3D at rest, ~3(c+1)D under light contention, <= 6fD always.\n";
  return 0;
}
