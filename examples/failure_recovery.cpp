// Failure injection walkthrough: crash exactly f base objects at the worst
// moments (mid-write) and show that reads still reconstruct the last
// written value from any n - f survivors — the quorum-intersection
// guarantee (n - f) + (n - f) - n = k at the heart of Section 5's key
// invariant.
//
//   $ ./examples/failure_recovery
#include <iostream>

#include "harness/runner.h"
#include "harness/table.h"

int main() {
  using namespace sbrs;

  registers::RegisterConfig cfg;
  cfg.f = 3;
  cfg.k = 2;
  cfg.n = 2 * cfg.f + cfg.k;  // 8 objects
  cfg.data_bits = 2048;

  std::cout << "failure-recovery demo: n=" << cfg.n << " objects, k=" << cfg.k
            << "-of-" << cfg.n << " code, crashing f=" << cfg.f
            << " objects during a write-heavy run\n"
            << "quorum intersection: (n-f)+(n-f)-n = " << (cfg.n - 2 * cfg.f)
            << " = k pieces survive in every read quorum\n\n";

  harness::Table table({"seed", "crashes", "ops done", "stuck ops",
                        "weakly regular", "strongly regular"});
  int failures = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto algorithm = registers::make_adaptive(cfg);
    harness::RunOptions opts;
    opts.writers = 3;
    opts.writes_per_client = 4;
    opts.readers = 3;
    opts.reads_per_client = 4;
    opts.object_crashes = cfg.f;
    opts.seed = seed;
    auto out = harness::run_register_experiment(*algorithm, opts);
    const size_t stuck = out.history.outstanding().size();
    table.add_row(seed, cfg.f, out.report.completed_ops, stuck,
                  out.weak_regular.ok ? "yes" : "NO",
                  out.strong_regular.ok ? "yes" : "NO");
    if (!out.weak_regular.ok || !out.strong_regular.ok || !out.live) {
      ++failures;
    }
  }
  table.print();

  if (failures > 0) {
    std::cerr << "\n" << failures << " runs violated their guarantees\n";
    return 1;
  }
  std::cout << "\nAll runs stayed strongly regular and every operation "
               "completed: f crashes are absorbed without losing data or "
               "liveness. (Crashing f+1 objects would make quorums "
               "unreachable — try it by editing this example.)\n";
  return 0;
}
