// Failure injection walkthrough: crash exactly f base objects at the worst
// moments (mid-write) and show that reads still reconstruct the last
// written value from any n - f survivors — the quorum-intersection
// guarantee (n - f) + (n - f) - n = k at the heart of Section 5's key
// invariant.
//
//   $ ./examples/failure_recovery
#include <iostream>

#include "harness/runner.h"
#include "harness/table.h"

int main() {
  using namespace sbrs;

  registers::RegisterConfig cfg;
  cfg.f = 3;
  cfg.k = 2;
  cfg.n = 2 * cfg.f + cfg.k;  // 8 objects
  cfg.data_bits = 2048;

  std::cout << "failure-recovery demo: n=" << cfg.n << " objects, k=" << cfg.k
            << "-of-" << cfg.n << " code, crashing f=" << cfg.f
            << " objects during a write-heavy run\n"
            << "quorum intersection: (n-f)+(n-f)-n = " << (cfg.n - 2 * cfg.f)
            << " = k pieces survive in every read quorum\n\n";

  harness::Table table({"seed", "crashes", "ops done", "stuck ops",
                        "weakly regular", "strongly regular"});
  int failures = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto algorithm = registers::make_adaptive(cfg);
    harness::RunOptions opts;
    opts.writers = 3;
    opts.writes_per_client = 4;
    opts.readers = 3;
    opts.reads_per_client = 4;
    opts.object_crashes = cfg.f;
    opts.seed = seed;
    auto out = harness::run_register_experiment(*algorithm, opts);
    const size_t stuck = out.history.outstanding().size();
    table.add_row(seed, cfg.f, out.report.completed_ops, stuck,
                  out.weak_regular.ok ? "yes" : "NO",
                  out.strong_regular.ok ? "yes" : "NO");
    if (!out.weak_regular.ok || !out.strong_regular.ok || !out.live) {
      ++failures;
    }
  }
  table.print();

  if (failures > 0) {
    std::cerr << "\n" << failures << " runs violated their guarantees\n";
    return 1;
  }
  std::cout << "\nAll runs stayed strongly regular and every operation "
               "completed: f crashes are absorbed without losing data or "
               "liveness. (Crashing f+1 objects would make quorums "
               "unreachable — try it by editing this example.)\n";

  // Part two: crash *recovery*. The same crashes, but each dead object
  // restarts from disk 60 steps later with exactly its pre-crash state —
  // stale, like a replica that missed every message while down. The run
  // reports the repair traffic the restarted objects absorb before fresh
  // writes overwrite them, and the degraded window the crashes opened.
  std::cout << "\nwith crash recovery (restart from disk after 60 steps):\n";
  harness::Table recovery({"seed", "crashes", "restarts", "repair bits",
                           "degraded steps", "strongly regular"});
  int recovery_failures = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto algorithm = registers::make_adaptive(cfg);
    harness::RunOptions opts;
    opts.writers = 3;
    opts.writes_per_client = 4;
    opts.readers = 3;
    opts.reads_per_client = 4;
    opts.object_crashes = cfg.f;
    opts.restart_after = 60;
    opts.seed = seed;
    auto out = harness::run_register_experiment(*algorithm, opts);
    recovery.add_row(seed, out.report.object_crash_events,
                     out.report.object_restarts, out.report.repair_bits,
                     out.report.degraded_steps,
                     out.strong_regular.ok ? "yes" : "NO");
    if (!out.strong_regular.ok || !out.live) ++recovery_failures;
  }
  recovery.print();
  if (recovery_failures > 0) {
    std::cerr << "\n" << recovery_failures
              << " recovery runs violated their guarantees\n";
    return 1;
  }
  std::cout << "\nRestarted-from-disk objects re-join with stale state and "
               "are re-converged by later rounds — every guarantee holds "
               "through crash AND recovery. (A --restart-mode=scratch "
               "replacement that lost its disk is the dangerous variant: "
               "see README \"Crash recovery\".)\n";
  return 0;
}
