// Watch the lower-bound proof happen: run the Definition 7 adversary Ad
// against a pure erasure-coded register and print the evolution of the
// proof's sets — the frozen objects F(t), the starved writes C+(t), and the
// storage the adversary extracts — until Lemma 3's fixed point.
//
//   $ ./examples/adversary_demo
#include <iomanip>
#include <iostream>

#include "adversary/ad_scheduler.h"
#include "adversary/tracker.h"
#include "bounds/formulas.h"
#include "registers/register_algorithm.h"
#include "sim/simulator.h"
#include "sim/workload.h"

int main() {
  using namespace sbrs;

  registers::RegisterConfig cfg;
  cfg.f = 3;
  cfg.k = 3;
  cfg.n = 2 * cfg.f + cfg.k;
  cfg.data_bits = 2048;
  const uint32_t c = 6;         // concurrent writers
  const uint64_t l = cfg.data_bits / 2;  // Theorem 1's threshold

  auto algorithm = registers::make_coded(cfg);
  std::cout << "Adversary Ad vs " << algorithm->name() << "  (f=" << cfg.f
            << ", n=" << cfg.n << ", c=" << c << ", D=" << cfg.data_bits
            << " bits, l=D/2)\n"
            << "Theorem 1 floor: min(f+1, c) * D/2 = "
            << bounds::lower_bound_bits(cfg.f, c, cfg.data_bits)
            << " bits\n\n";

  sim::UniformWorkload::Options wl;
  wl.writers = c;
  wl.writes_per_client = 1;
  wl.data_bits = cfg.data_bits;

  adversary::AdScheduler::Options ad;
  ad.l_bits = l;
  ad.data_bits = cfg.data_bits;
  ad.concurrency = c;
  ad.f = cfg.f;

  sim::SimConfig sc;
  sc.num_objects = cfg.n;
  sc.num_clients = c;

  adversary::OpClassTracker tracker(l, cfg.data_bits);
  sim::Simulator sim(sc, algorithm->object_factory(),
                     algorithm->client_factory(),
                     std::make_unique<sim::UniformWorkload>(wl),
                     std::make_unique<adversary::AdScheduler>(ad));

  std::cout << std::setw(5) << "t" << std::setw(10) << "storage"
            << std::setw(8) << "|F(t)|" << std::setw(8) << "|C+|"
            << std::setw(8) << "|C-|" << "   note\n";
  size_t last_frozen = 0, last_cplus = 0;
  while (sim.step()) {
    auto snap = sim.snapshot();
    auto st = tracker.classify(sim.history(), snap);
    if (st.frozen.size() != last_frozen || st.c_plus.size() != last_cplus ||
        sim.now() % 8 == 0) {
      std::string note;
      if (st.frozen.size() > last_frozen) note += "object froze! ";
      if (st.c_plus.size() > last_cplus) note += "write starved into C+";
      std::cout << std::setw(5) << sim.now() << std::setw(10)
                << snap.total_bits() << std::setw(8) << st.frozen.size()
                << std::setw(8) << st.c_plus.size() << std::setw(8)
                << st.c_minus.size() << "   " << note << "\n";
      last_frozen = st.frozen.size();
      last_cplus = st.c_plus.size();
    }
  }

  auto snap = sim.snapshot();
  std::cout << "\nFixed point: " << sim.report().stop_reason << "\n"
            << "Writes completed under Ad: "
            << sim.history().completed_writes() << " (the adversary "
            << "prevents progress, Corollary 1)\n"
            << "Final storage: " << snap.total_bits() << " bits >= floor "
            << bounds::lower_bound_bits(cfg.f, c, cfg.data_bits)
            << " bits\n";
  return 0;
}
